// Command bzlint runs the repository's static analyzers (internal/lint)
// over the given package patterns.
//
//	go run ./cmd/bzlint ./...                 # whole tree (what `make lint` runs)
//	go run ./cmd/bzlint ./internal/wsn        # one package
//	go run ./cmd/bzlint -hints ./internal/... # with suggested rewrites
//	go run ./cmd/bzlint -json ./...           # machine-readable diagnostics
//
// The suite is seven analyzers: determinism, hotpath, floateq,
// deprecated, statecov, lockcheck, and mutroute, plus the stale-waiver
// report (-staleallow, on by default). When the CI environment variable
// is set, diagnostics are also emitted as GitHub Actions
// ::error annotations so findings surface inline on the PR diff.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load or type-check failure. The analyzers and the directive syntax
// (//bzlint:ordered, //bzlint:allow, //bzlint:hotpath, //bzlint:state,
// //bzlint:guards, //bzlint:holds, //bzlint:mutsetter, //bzlint:mutroute)
// are documented in DESIGN.md §7 "Static invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bubblezero/internal/lint"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

func main() {
	hints := flag.Bool("hints", false, "print a suggested rewrite under each diagnostic (make lint-fix-hints)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	staleAllow := flag.Bool("staleallow", true, "report //bzlint waivers that no longer suppress any diagnostic")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bzlint [-hints] [-json] [-staleallow=false] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bzlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bzlint:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig()
	cfg.StaleAllow = *staleAllow
	diags := lint.Run(loader.Fset, pkgs, cfg)

	ci := os.Getenv("CI") != ""
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Hint: d.Hint,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "bzlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *hints && d.Hint != "" {
				fmt.Println("    hint:", d.Hint)
			}
		}
	}
	if ci {
		// GitHub Actions workflow commands: one inline annotation per
		// finding, in addition to the normal output above.
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bzlint: %d diagnostic(s) in %d package(s); run `make lint-fix-hints` for suggested rewrites\n",
			len(diags), len(pkgs))
		os.Exit(1)
	}
}
