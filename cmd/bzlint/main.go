// Command bzlint runs the repository's determinism and hot-path static
// analyzers (internal/lint) over the given package patterns.
//
//	go run ./cmd/bzlint ./...                 # whole tree (what `make lint` runs)
//	go run ./cmd/bzlint ./internal/wsn        # one package
//	go run ./cmd/bzlint -hints ./internal/... # with suggested rewrites
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load or type-check failure. The analyzers and the waiver-comment
// syntax (//bzlint:ordered, //bzlint:allow, //bzlint:hotpath) are
// documented in DESIGN.md §7 "Static invariants".
package main

import (
	"flag"
	"fmt"
	"os"

	"bubblezero/internal/lint"
)

func main() {
	hints := flag.Bool("hints", false, "print a suggested rewrite under each diagnostic (make lint-fix-hints)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bzlint [-hints] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bzlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bzlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(loader.Fset, pkgs, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
		if *hints && d.Hint != "" {
			fmt.Println("    hint:", d.Hint)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bzlint: %d diagnostic(s) in %d package(s); run `make lint-fix-hints` for suggested rewrites\n",
			len(diags), len(pkgs))
		os.Exit(1)
	}
}
