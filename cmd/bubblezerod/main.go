// Command bubblezerod serves the digital-twin HTTP API: create fleets
// from a JSON config, advance them in the background, inject live
// climate/door/fault events, read downsampled telemetry, and
// checkpoint/restore them as versioned gob snapshots.
//
//	bubblezerod -addr 127.0.0.1:8080
//
// See internal/twin.Server for the route table and DESIGN.md §11 for the
// API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"bubblezero/internal/twin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bubblezerod:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := twin.NewServer()
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("bubblezerod listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutCtx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
