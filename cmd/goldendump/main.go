// goldendump maintains the golden epoch that pins the deterministic
// kernel (internal/experiments/testdata/golden_epoch.json).
//
// Default mode prints the SHA-256 of the bit-exact Figure 10 trace dump
// for a seed, for ad-hoc comparison against the pinned epoch:
//
//	goldendump [-seed N] [-dump file]
//
// Re-pin mode regenerates the epoch record after an intentional kernel or
// model change (normally driven via `make repin REASON="..."`):
//
//	goldendump -repin path/to/golden_epoch.json -reason "why the bits moved"
//
// A re-pin refuses to land unless the fresh trial's paper metrics sit
// inside experiments.CheckFig10Bounds; it bumps the epoch version and
// carries the outgoing digest and metrics forward as prev_digest /
// prev_metrics so the record documents its own old→new delta. If the
// digest is unchanged the re-pin is a no-op.
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"time"

	"bubblezero/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "scenario seed (default mode; re-pin keeps the epoch's seed)")
	dump := flag.String("dump", "", "also write the full exact dump to this file")
	repin := flag.String("repin", "", "re-pin the golden epoch record at this path")
	reason := flag.String("reason", "", "why the re-pin is justified (required with -repin)")
	flag.Parse()

	if *repin != "" {
		if err := doRepin(*repin, *reason, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "goldendump:", err)
			os.Exit(1)
		}
		return
	}

	r, err := experiments.Fig10(context.Background(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldendump:", err)
		os.Exit(1)
	}
	fmt.Println(digest(r))
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goldendump:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.Recorder.WriteExact(f); err != nil {
			fmt.Fprintln(os.Stderr, "goldendump:", err)
			os.Exit(1)
		}
	}
}

func digest(r *experiments.Fig10Result) string {
	h := sha256.New()
	if err := r.Recorder.WriteExact(h); err != nil {
		// WriteExact to a hash cannot fail for I/O reasons; a failure here
		// is a recorder bug worth crashing on.
		panic(err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func doRepin(path, reason string, seed uint64) error {
	if reason == "" {
		return fmt.Errorf("-repin requires -reason (or: make repin REASON=\"...\")")
	}

	prev, err := experiments.LoadGoldenEpoch(path)
	switch {
	case err == nil:
		seed = prev.Seed // an epoch pins one seed for its whole lineage
	case errors.Is(err, fs.ErrNotExist):
		prev = nil // bootstrap: first epoch of the lineage
	default:
		return err
	}

	r, err := experiments.Fig10(context.Background(), seed)
	if err != nil {
		return err
	}
	m := r.Metrics()
	if err := experiments.CheckFig10Bounds(m); err != nil {
		return fmt.Errorf("refusing to pin an out-of-bounds kernel: %w", err)
	}

	e := &experiments.GoldenEpoch{
		Version:      1,
		Pinned:       time.Now().UTC().Format("2006-01-02"),
		Reason:       reason,
		Seed:         seed,
		Digest:       digest(r),
		NetworkSteps: r.NetworkSteps,
		Metrics:      m,
	}
	if prev != nil {
		if e.Digest == prev.Digest && r.NetworkSteps == prev.NetworkSteps {
			fmt.Printf("golden epoch v%d unchanged (digest %s); nothing to re-pin\n",
				prev.Version, prev.Digest[:12])
			return nil
		}
		e.Version = prev.Version + 1
		e.PrevDigest = prev.Digest
		pm := prev.Metrics
		e.PrevMetrics = &pm
	}
	if err := experiments.WriteGoldenEpoch(path, e); err != nil {
		return err
	}
	fmt.Printf("pinned golden epoch v%d: digest %s…, network steps %d\n",
		e.Version, e.Digest[:12], e.NetworkSteps)
	if prev != nil {
		fmt.Printf("  previous v%d: digest %s…\n", prev.Version, prev.Digest[:12])
		fmt.Printf("  Δ temp-converge %+.2f min, Δ dew-converge %+.2f min, Δ blip %+.3f °C, "+
			"Δ recovery %+.2f min, Δ final COP %+.3f\n",
			m.TempConvergeMin-prev.Metrics.TempConvergeMin,
			m.DewConvergeMin-prev.Metrics.DewConvergeMin,
			m.Event1DewBlipC-prev.Metrics.Event1DewBlipC,
			m.Event2RecoveryMin-prev.Metrics.Event2RecoveryMin,
			m.FinalCOP-prev.Metrics.FinalCOP)
	}
	return nil
}
