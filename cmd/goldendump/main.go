// goldendump prints the SHA-256 of the bit-exact Figure 10 trace dump for
// a seed (default 1). The kernel-determinism test pins this hash: any
// change to the tick kernel that alters a single bit of any traced series
// changes the digest. Usage: goldendump [-dump file] [-seed N]
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"

	"bubblezero/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "scenario seed")
	dump := flag.String("dump", "", "also write the full exact dump to this file")
	flag.Parse()

	r, err := experiments.Fig10(context.Background(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldendump:", err)
		os.Exit(1)
	}
	h := sha256.New()
	if err := r.Recorder.WriteExact(h); err != nil {
		fmt.Fprintln(os.Stderr, "goldendump:", err)
		os.Exit(1)
	}
	fmt.Printf("%x\n", h.Sum(nil))
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goldendump:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.Recorder.WriteExact(f); err != nil {
			fmt.Fprintln(os.Stderr, "goldendump:", err)
			os.Exit(1)
		}
	}
}
