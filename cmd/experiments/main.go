// Command experiments regenerates every table and figure of the paper's
// evaluation section (§V). With no flags it runs the full suite; use -fig
// to run a single experiment and -csv to emit the underlying series.
//
//	experiments -fig 10 -csv fig10.csv
//	experiments -fig all -hours 5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"bubblezero/internal/experiments"
	"bubblezero/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 10, 11, 12, 13, 14, 15, exergy, ablations, all")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		hours  = flag.Float64("hours", 5, "networking-scenario length in simulated hours (figs 12-15)")
		csv    = flag.String("csv", "", "write the figure's underlying series as CSV to this file")
		mdPath = flag.String("report", "", "write the full evaluation as a markdown report to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	d := time.Duration(*hours * float64(time.Hour))
	all := *fig == "all"

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		if err := report.Generate(ctx, *seed, *hours, f); err != nil {
			f.Close()
			return fmt.Errorf("report: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("report written to", *mdPath)
		return nil
	}

	if all || *fig == "10" {
		r, err := experiments.Fig10(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Summary())
		if *csv != "" && *fig == "10" {
			if err := writeCSV(*csv, r.WriteTable); err != nil {
				return err
			}
		}
	}
	if all || *fig == "11" {
		r, err := experiments.Fig11(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Summary())
		fmt.Printf("  radiant %.1f W removed / %.1f W consumed (paper 964.8/213.4); "+
			"vent %.1f W / %.1f W (paper 213.2/75.6)\n",
			r.RadiantRemovedW, r.RadiantConsumedW, r.VentRemovedW, r.VentConsumedW)
	}
	if all || *fig == "12" {
		r, err := experiments.Fig12(ctx, *seed, d, nil)
		if err != nil {
			return err
		}
		fmt.Print(r.Summary())
	}
	if all || *fig == "13" {
		r, err := experiments.Fig13(ctx, *seed, d)
		if err != nil {
			return err
		}
		fmt.Println(r.Summary())
	}
	if all || *fig == "14" {
		r, err := experiments.Fig14(ctx, *seed, d)
		if err != nil {
			return err
		}
		fmt.Println(r.Summary())
	}
	if all || *fig == "15" {
		r, err := experiments.Fig15(ctx, *seed, d)
		if err != nil {
			return err
		}
		fmt.Println(r.Summary())
	}
	if all || *fig == "exergy" {
		r, err := experiments.ExergyAudit(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Print(r.Summary())
	}
	if all || *fig == "ablations" {
		pts, err := experiments.AblationSupplyTemp(ctx, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.SummarizeSupplyTemp(pts))
		nc, err := experiments.AblationNoCoupling(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("Ablation: condensation guarded %.0f s vs unguarded %.0f s\n",
			nc.GuardedCondensationS, nc.UnguardedCondensationS)
		ds, err := experiments.AblationDesync(ctx, *seed, 30*time.Minute)
		if err != nil {
			return err
		}
		fmt.Printf("Ablation: desync collisions %d (delivery %.4f) vs random %d (delivery %.4f)\n",
			ds.WithDesync.Collided, ds.WithDesync.DeliveryRate(),
			ds.WithoutDesync.Collided, ds.WithoutDesync.DeliveryRate())
	}
	return nil
}

func writeCSV(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
