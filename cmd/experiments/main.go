// Command experiments regenerates every table and figure of the paper's
// evaluation section (§V). With no flags it runs the full suite; use -fig
// to run a single experiment and -csv to emit the underlying series.
//
//	experiments -fig 10 -csv fig10.csv
//	experiments -fig all -hours 5
//	experiments -fig all -parallel 4 -cpuprofile cpu.out
//
// Independent experiments fan out across a bounded worker pool (-parallel
// controls the width; 0 means NumCPU), and Figures 12–15 share a single
// memoized scenario simulation. -cpuprofile / -memprofile capture pprof
// profiles of the run for tuning the runner.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"bubblezero/internal/experiments"
	"bubblezero/internal/report"
	"bubblezero/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 10, 11, 12, 13, 14, 15, resilience, lifetime, exergy, ablations, fleet, all (fleet only when named: its summary reports host-dependent wall-clock and heap measurements)")
		buildings  = flag.Int("buildings", 100, "fleet size for -fig fleet")
		shards     = flag.Int("shards", 0, "fleet shard count for -fig fleet (0 = NumCPU)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		hours      = flag.Float64("hours", 5, "networking-scenario length in simulated hours (figs 12-15)")
		csv        = flag.String("csv", "", "write the figure's underlying series as CSV to this file")
		mdPath     = flag.String("report", "", "write the full evaluation as a markdown report to this file")
		parallel   = flag.Int("parallel", 0, "worker count for independent experiments (0 = NumCPU)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	suite := experiments.NewSuite(*parallel)
	d := time.Duration(*hours * float64(time.Hour))

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		if err := report.GenerateWith(ctx, suite, *seed, *hours, f); err != nil {
			f.Close()
			return fmt.Errorf("report: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("report written to", *mdPath)
		return nil
	}

	// Each figure renders to its own slot; with -fig all the jobs fan out
	// across the pool and print in the fixed figure order once all are
	// done. Figures 12–15 share one scenario simulation via the suite.
	type sectionFn func(ctx context.Context) (string, error)
	sections := []struct {
		name string
		fn   sectionFn
	}{
		{"10", func(ctx context.Context) (string, error) {
			r, err := experiments.Fig10(ctx, *seed)
			if err != nil {
				return "", err
			}
			if *csv != "" && *fig == "10" {
				if err := writeCSV(*csv, r.WriteTable); err != nil {
					return "", err
				}
			}
			return r.Summary() + "\n", nil
		}},
		{"11", func(ctx context.Context) (string, error) {
			r, err := experiments.Fig11(ctx, *seed)
			if err != nil {
				return "", err
			}
			return r.Summary() + "\n" + fmt.Sprintf(
				"  radiant %.1f W removed / %.1f W consumed (paper 964.8/213.4); "+
					"vent %.1f W / %.1f W (paper 213.2/75.6)\n",
				r.RadiantRemovedW, r.RadiantConsumedW, r.VentRemovedW, r.VentConsumedW), nil
		}},
		{"12", func(ctx context.Context) (string, error) {
			r, err := suite.Fig12(ctx, *seed, d, nil)
			if err != nil {
				return "", err
			}
			return r.Summary(), nil
		}},
		{"13", func(ctx context.Context) (string, error) {
			r, err := suite.Fig13(ctx, *seed, d)
			if err != nil {
				return "", err
			}
			return r.Summary() + "\n", nil
		}},
		{"14", func(ctx context.Context) (string, error) {
			r, err := suite.Fig14(ctx, *seed, d)
			if err != nil {
				return "", err
			}
			return r.Summary() + "\n", nil
		}},
		{"15", func(ctx context.Context) (string, error) {
			r, err := suite.Fig15(ctx, *seed, d)
			if err != nil {
				return "", err
			}
			return r.Summary() + "\n", nil
		}},
		{"resilience", func(ctx context.Context) (string, error) {
			r, err := suite.Resilience(ctx, *seed, nil)
			if err != nil {
				return "", err
			}
			if *csv != "" && *fig == "resilience" {
				if err := writeCSV(*csv, r.WriteTable); err != nil {
					return "", err
				}
			}
			return r.Summary() + "\n", nil
		}},
		{"lifetime", func(ctx context.Context) (string, error) {
			r, err := suite.Lifetime(ctx, *seed)
			if err != nil {
				return "", err
			}
			if *csv != "" && *fig == "lifetime" {
				if err := writeCSV(*csv, r.WriteTable); err != nil {
					return "", err
				}
			}
			return r.Summary() + "\n", nil
		}},
		{"fleet", func(ctx context.Context) (string, error) {
			r, err := experiments.FleetScale(ctx, *seed, *buildings, *shards, time.Hour)
			if err != nil {
				return "", err
			}
			if *csv != "" && *fig == "fleet" {
				if err := writeCSV(*csv, r.WriteTable); err != nil {
					return "", err
				}
			}
			return r.Summary(), nil
		}},
		{"exergy", func(ctx context.Context) (string, error) {
			r, err := experiments.ExergyAudit(ctx, *seed)
			if err != nil {
				return "", err
			}
			return r.Summary(), nil
		}},
		{"ablations", func(ctx context.Context) (string, error) {
			pts, err := suite.AblationSupplyTemp(ctx, *seed, nil)
			if err != nil {
				return "", err
			}
			nc, err := suite.AblationNoCoupling(ctx, *seed)
			if err != nil {
				return "", err
			}
			ds, err := suite.AblationDesync(ctx, *seed, 30*time.Minute)
			if err != nil {
				return "", err
			}
			return experiments.SummarizeSupplyTemp(pts) + fmt.Sprintf(
				"Ablation: condensation guarded %.0f s vs unguarded %.0f s\n"+
					"Ablation: desync collisions %d (delivery %.4f) vs random %d (delivery %.4f)\n",
				nc.GuardedCondensationS, nc.UnguardedCondensationS,
				ds.WithDesync.Collided, ds.WithDesync.DeliveryRate(),
				ds.WithoutDesync.Collided, ds.WithoutDesync.DeliveryRate()), nil
		}},
	}

	all := *fig == "all"
	outputs := make([]string, len(sections))
	jobs := make([]runner.Job, 0, len(sections))
	for i, s := range sections {
		if !all && *fig != s.name {
			continue
		}
		// The fleet section reports wall-clock throughput and measured
		// live-heap bytes — host-dependent numbers that would break the
		// byte-identical -fig all diff across -parallel widths — so it
		// only runs when named explicitly.
		if all && s.name == "fleet" {
			continue
		}
		i, s := i, s
		jobs = append(jobs, func(ctx context.Context) error {
			out, err := s.fn(ctx)
			if err != nil {
				return fmt.Errorf("fig %s: %w", s.name, err)
			}
			outputs[i] = out
			return nil
		})
	}
	if len(jobs) == 0 {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	if err := suite.Pool().Run(ctx, jobs...); err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
	return nil
}

func writeCSV(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
