// Command bubblezero runs the full BubbleZERO system and streams its state
// — the simulated equivalent of watching the paper's deployment logs. It
// drives a one-building fleet through the same event API the digital-twin
// server (bubblezerod) exposes: door disturbances are fleet events applied
// at run boundaries, not ad-hoc mutations.
//
//	bubblezero -duration 105m -door 65m:15s -door 85m:2m -csv trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fleet"
	"bubblezero/internal/thermal"
	"bubblezero/internal/wsn"
)

type doorFlag []string

func (d *doorFlag) String() string { return strings.Join(*d, ",") }

func (d *doorFlag) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bubblezero:", err)
		os.Exit(1)
	}
}

// doorAt is one scheduled opening, resolved to the tick boundary where
// its fleet event is applied.
type doorAt struct {
	tick uint64
	dur  time.Duration
}

func run() error {
	var doors doorFlag
	var (
		duration = flag.Duration("duration", 105*time.Minute, "simulated run length")
		report   = flag.Duration("report", 5*time.Minute, "status print period")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		fixed    = flag.Bool("fixed-tx", false, "use fixed transmission instead of BT-ADPT")
		csvPath  = flag.String("csv", "", "write the temperature/dew traces to this CSV file")
		sniff    = flag.String("sniff", "", "write a sniffer packet log (CSV) to this file")
		confPath = flag.String("config", "", "JSON config file (see core.FileConfig for the schema)")
	)
	flag.Var(&doors, "door", "schedule a door opening as OFFSET:DURATION (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := core.DefaultConfig()
	if *confPath != "" {
		loaded, err := core.LoadConfig(*confPath)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	cfg.Seed = *seed
	if *fixed {
		cfg.TxMode = wsn.ModeFixed
	}

	// A one-building fleet: the CLI dogfoods the same construction and
	// mutation route the twin server uses. No per-building variation —
	// the building runs the loaded config as-is (seeded from the fleet
	// seed).
	fc := fleet.Config{Buildings: 1, Shards: 1, Seed: *seed, Base: cfg}
	if cfg.TracePeriod > 0 {
		fc.SampleEvery = 1
	}
	if err := fc.Validate(); err != nil {
		return err
	}

	step := cfg.Step
	total := uint64(*duration / step)
	repTicks := uint64(*report / step)
	if repTicks == 0 {
		repTicks = 1
	}

	// Door openings become fleet events applied at their offset's tick
	// boundary — the run below is segmented so each event lands exactly
	// there (offsets truncate to whole ticks).
	var openings []doorAt
	for _, spec := range doors {
		offset, dur, err := parseDoor(spec)
		if err != nil {
			return err
		}
		openings = append(openings, doorAt{tick: uint64(offset / step), dur: dur})
		fmt.Printf("scheduled door opening at +%v for %v\n", offset, dur)
	}
	sort.Slice(openings, func(i, j int) bool { return openings[i].tick < openings[j].tick })

	fl, err := fleet.New(ctx, fc)
	if err != nil {
		return err
	}
	sys := fl.Building(0)
	start := sys.Now()

	var sniffer *wsn.Sniffer
	if *sniff != "" {
		f, err := os.Create(*sniff)
		if err != nil {
			return err
		}
		defer f.Close()
		sniffer, err = sys.AttachSniffer(f)
		if err != nil {
			return err
		}
	}

	fmt.Printf("BubbleZERO: %d nodes, outdoor %.1f°C / %.1f°C dew, targets 25°C / 18°C dew\n",
		sys.Network().NodeCount(), sys.Room().Outdoor().T, sys.Room().Outdoor().DewPoint())

	// Segment the run at door offsets and report boundaries: queued door
	// events drain at the top of the next RunTicks, so an event queued at
	// a segment boundary takes effect at exactly that tick.
	var tick uint64
	nextReport := repTicks
	di := 0
	for tick < total {
		for di < len(openings) && openings[di].tick <= tick {
			if err := fl.Apply(fleet.Event{Kind: fleet.EventDoor, Building: 0, Door: openings[di].dur}); err != nil {
				return err
			}
			di++
		}
		next := nextReport
		if next > total {
			next = total
		}
		if di < len(openings) && openings[di].tick > tick && openings[di].tick < next {
			next = openings[di].tick
		}
		if err := fl.RunTicks(ctx, next-tick); err != nil {
			return err
		}
		tick = next
		if tick >= nextReport || tick == total {
			sn := sys.Snapshot()
			fmt.Printf("%s  zones[", sn.Time.Format("15:04"))
			for z := 0; z < thermal.NumZones; z++ {
				if z > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%.1f/%.1f", sn.ZoneTempC[z], sn.ZoneDewC[z])
			}
			fmt.Printf("]°C  COP %.2f  net %.1f%%  cond %.0fs\n",
				sn.COPTotal, sn.NetStats.DeliveryRate()*100, sn.CondensationS)
			for tick >= nextReport {
				nextReport += repTicks
			}
		}
	}

	sn := sys.Snapshot()
	fmt.Printf("\nfinal: avg %.2f°C (target 25), dew %.2f°C (target 18), COP %.2f "+
		"(Bubble-C %.2f, Bubble-V %.2f), condensation %.0f s\n",
		sn.AvgTempC, sn.AvgDewC, sn.COPTotal, sn.COPRadiant, sn.COPVent, sn.CondensationS)

	if sniffer != nil {
		fmt.Println()
		fmt.Print(sniffer.Summary())
		if err := sniffer.Err(); err != nil {
			return fmt.Errorf("sniffer log: %w", err)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		names := []string{
			"temp.subsp1", "temp.subsp2", "temp.subsp3", "temp.subsp4",
			"dew.subsp1", "dew.subsp2", "dew.subsp3", "dew.subsp4",
		}
		if err := sys.Recorder().WriteCSV(f, names, start, sn.Time, 30*time.Second); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("trace written to", *csvPath)
	}
	return nil
}

func parseDoor(spec string) (offset, dur time.Duration, err error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("door spec %q: want OFFSET:DURATION", spec)
	}
	offset, err = time.ParseDuration(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("door spec %q: %w", spec, err)
	}
	dur, err = time.ParseDuration(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("door spec %q: %w", spec, err)
	}
	return offset, dur, nil
}
