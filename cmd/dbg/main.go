package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/experiments"
)

func main() {
	sc, err := experiments.RunNetScenario(context.Background(), 1, 5*time.Hour)
	if err != nil {
		panic(err)
	}
	ids := make([]string, 0)
	for id := range sc.Readings {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cfg := adaptive.DefaultConfig(sc.TsplS[id])
		cfg.TrackExact = true
		sched, _ := adaptive.NewScheduler(cfg)
		for _, v := range sc.Readings[id] {
			sched.OnSample(v)
		}
		acc, dec := sched.Accuracy()
		lo, hi, _ := sched.Histogram().Range()
		l, _ := sched.Lambda()
		fmt.Printf("%-16s acc=%.3f dec=%d range=[%.3g,%.3g] lambda=%.3g\n", id, acc, dec, lo, hi, l)
	}
}
