package bubblezero_test

import (
	"context"
	"io"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/exergy"
	"bubblezero/internal/experiments"
	"bubblezero/internal/multihop"
	"bubblezero/internal/psychro"
	"bubblezero/internal/report"
)

// benchHorizon keeps the networking-scenario benchmarks snappy; the
// cmd/experiments binary runs the full five-hour trials.
const benchHorizon = 2 * time.Hour

// Figure benchmarks run against a fresh suite so no scenario cached by an
// earlier benchmark can turn a measured simulation into a cache hit; the
// varying per-iteration seed keeps iterations honest within a benchmark.

// BenchmarkFig10Overall regenerates Figure 10: the 105-minute two-phase
// control trial with both door disturbances. Reported metrics are the
// convergence times (paper: ≈30 min for both temperature and dew point).
func BenchmarkFig10Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(context.Background(), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TempConverge.Minutes(), "temp-converge-min")
		b.ReportMetric(r.DewConverge.Minutes(), "dew-converge-min")
		b.ReportMetric(r.Event1DewBlipC, "door-blip-C")
		b.ReportMetric(r.CondensationS, "condensation-s")
	}
}

// BenchmarkFig11COP regenerates Figure 11: steady-state COP of AirCon,
// Bubble-C, Bubble-V, and BubbleZERO (paper: 2.80 / 4.52 / 2.82 / 4.07).
func BenchmarkFig11COP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(context.Background(), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AirCon, "cop-aircon")
		b.ReportMetric(r.BubbleC, "cop-bubble-c")
		b.ReportMetric(r.BubbleV, "cop-bubble-v")
		b.ReportMetric(r.BubbleZERO, "cop-bubblezero")
		b.ReportMetric(r.ImprovementPct, "improvement-pct")
	}
}

// BenchmarkFig12HistogramN regenerates Figure 12: decision accuracy, RAM,
// and modelled MSP430 CPU time versus histogram size N (paper: ≈98 %
// accuracy for large N, 130 B and ≈1.6 s at N = 60, default N = 40).
func BenchmarkFig12HistogramN(b *testing.B) {
	suite := experiments.NewSuite(0)
	for i := 0; i < b.N; i++ {
		r, err := suite.Fig12(context.Background(), uint64(i+1), benchHorizon,
			[]int{5, 20, 40, 60})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.N == 40 {
				b.ReportMetric(p.AccuracyPct, "accuracy-N40-pct")
			}
			if p.N == 60 {
				b.ReportMetric(float64(p.RAMBytes), "ram-N60-bytes")
				b.ReportMetric(p.CPUSeconds*1000, "cpu-N60-msp430-ms")
			}
		}
	}
}

// BenchmarkFig13AccuracyOverTime regenerates Figure 13: the rolling
// decision accuracy trajectory (paper: starts ≈87 %, stabilises 97–99 %).
func BenchmarkFig13AccuracyOverTime(b *testing.B) {
	suite := experiments.NewSuite(0)
	for i := 0; i < b.N; i++ {
		r, err := suite.Fig13(context.Background(), uint64(i+1), benchHorizon)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Accuracy.Stats().Min*100, "accuracy-min-pct")
		b.ReportMetric(r.FinalAccuracyPct, "accuracy-final-pct")
		b.ReportMetric(r.VarMinStableS, "varmin-stable-s")
	}
}

// BenchmarkFig14TsndAdaptation regenerates Figure 14: transmission-period
// adaptation across door events (paper: 64 s plateau, detection delay max
// 4 s / mean 2.7 s).
func BenchmarkFig14TsndAdaptation(b *testing.B) {
	suite := experiments.NewSuite(0)
	for i := 0; i < b.N; i++ {
		r, err := suite.Fig14(context.Background(), uint64(i+1), benchHorizon)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StableTsndS, "stable-tsnd-s")
		b.ReportMetric(r.MeanDelayS, "detect-delay-mean-s")
		b.ReportMetric(r.MaxDelayS, "detect-delay-max-s")
	}
}

// BenchmarkFig15TsndCDF regenerates Figure 15: the T_snd distribution and
// the battery-lifetime comparison (paper: mean ≈48 s; 3.2 y vs 0.7 y).
func BenchmarkFig15TsndCDF(b *testing.B) {
	suite := experiments.NewSuite(0)
	for i := 0; i < b.N; i++ {
		r, err := suite.Fig15(context.Background(), uint64(i+1), benchHorizon)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanTsndS, "mean-tsnd-s")
		b.ReportMetric(r.AdaptiveYears, "adaptive-years")
		b.ReportMetric(r.FixedYears, "fixed-years")
	}
}

// BenchmarkAblationSupplyTempSweep measures the low-exergy design choice:
// whole-system COP across radiant supply temperatures.
func BenchmarkAblationSupplyTempSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationSupplyTemp(context.Background(), uint64(i+1),
			[]float64{12, 18, 21})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.TSupplyC == 18 {
				b.ReportMetric(p.SystemCOP, "system-cop-18C")
			}
			if p.TSupplyC == 12 {
				b.ReportMetric(p.SystemCOP, "system-cop-12C")
			}
		}
	}
}

// BenchmarkAblationNoCoupling measures what the control decomposition
// prevents: condensation seconds with the dew guard removed.
func BenchmarkAblationNoCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationNoCoupling(context.Background(), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GuardedCondensationS, "guarded-condensation-s")
		b.ReportMetric(r.UnguardedCondensationS, "unguarded-condensation-s")
	}
}

// BenchmarkAblationDesync measures the AC schedule desynchronisation's
// effect on collisions under fixed-mode channel pressure.
func BenchmarkAblationDesync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDesync(context.Background(), uint64(i+1), 20*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WithDesync.Collided), "collisions-desync")
		b.ReportMetric(float64(r.WithoutDesync.Collided), "collisions-random")
	}
}

// BenchmarkAlgorithm1Threshold micro-benchmarks one Algorithm 1 run at the
// paper's default N = 40 — the on-mote cost being modelled by
// CPUSecondsMSP430.
func BenchmarkAlgorithm1Threshold(b *testing.B) {
	hist, err := adaptive.NewHistogram(adaptive.DefaultN)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		hist.Add(float64(i%97) / 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := hist.Threshold(); !ok {
			b.Fatal("no threshold")
		}
	}
}

// BenchmarkPsychroDewPoint micro-benchmarks the Magnus dew point — the
// hottest function in the control path.
func BenchmarkPsychroDewPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = psychro.DewPoint(25+float64(i%10)/10, 60)
	}
}

// BenchmarkChillerCOP micro-benchmarks the lift-dependent chiller model.
func BenchmarkChillerCOP(b *testing.B) {
	c := exergy.DefaultChiller()
	for i := 0; i < b.N; i++ {
		_ = c.COP(18, 28.9+float64(i%5)/10)
	}
}

// BenchmarkMultihopWing measures the building-level future-work extension:
// flood versus type-mesh routing on the three-floor reference wing.
func BenchmarkMultihopWing(b *testing.B) {
	for _, routing := range []multihop.Routing{multihop.RoutingFlood, multihop.RoutingMesh} {
		b.Run(routing.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := multihop.DefaultConfig()
				cfg.Routing = routing
				cfg.TTL = 12
				wing := multihop.DefaultWing()
				net, err := multihop.BuildWing(cfg, wing, rand.New(rand.NewPCG(uint64(i+1), 1)))
				if err != nil {
					b.Fatal(err)
				}
				st, err := multihop.RunWingWorkload(net, wing, 20)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.DeliveryRatio()*100, "delivery-pct")
				b.ReportMetric(st.TxPerDelivery(), "tx-per-delivery")
				b.ReportMetric(st.AvgHops(), "avg-hops")
			}
		})
	}
}

// BenchmarkExergyAudit measures the second-law decomposition of the
// Figure 11 gain: minimum versus actual work per subsystem.
func BenchmarkExergyAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExergyAudit(context.Background(), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "BubbleZERO (combined)" {
				b.ReportMetric(row.SecondLawEff(), "bubblezero-2ndlaw-eff")
			}
			if row.Name == "AirCon (8 °C air)" {
				b.ReportMetric(row.SecondLawEff(), "aircon-2ndlaw-eff")
			}
		}
	}
}

// BenchmarkReportGenerate measures the full evaluation pipeline — every
// figure, the exergy audit, and the ablations — through the parallel
// suite with a cold scenario cache each iteration. This is the end-to-end
// number the runner and the scenario memoization exist to improve.
func BenchmarkReportGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(0)
		if err := report.GenerateWith(context.Background(), suite, uint64(i+1), 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigAllSerialVsParallel pins the two wins separately visible in
// the trajectory: "serial" reproduces the pre-runner shape (each of
// Figures 12–15 re-simulates its own scenario, sequentially), "parallel"
// is the suite path (one memoized simulation, figures fanned across the
// pool). The ratio is the -fig all wall-clock improvement.
func BenchmarkFigAllSerialVsParallel(b *testing.B) {
	ctx := context.Background()
	const horizon = time.Hour
	ns := []int{5, 40}

	b.Run("serial", func(b *testing.B) {
		// Four sequential scenario simulations, one per figure — the Fig12
		// arm uses a throwaway width-1 suite so it still simulates its own.
		for i := 0; i < b.N; i++ {
			seed := uint64(i + 1)
			if _, err := experiments.NewSuite(1).Fig12(ctx, seed, horizon, ns); err != nil {
				b.Fatal(err)
			}
			for fig := 0; fig < 3; fig++ {
				sc, err := experiments.RunNetScenario(ctx, seed, horizon)
				if err != nil {
					b.Fatal(err)
				}
				switch fig {
				case 0:
					_ = experiments.Fig13FromScenario(sc)
				case 1:
					_ = experiments.Fig14FromScenario(sc)
				case 2:
					if _, err := experiments.Fig15FromScenario(ctx, sc, seed); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed := uint64(i + 1)
			suite := experiments.NewSuite(runtime.NumCPU())
			err := suite.Pool().Run(ctx,
				func(ctx context.Context) error { _, err := suite.Fig12(ctx, seed, horizon, ns); return err },
				func(ctx context.Context) error { _, err := suite.Fig13(ctx, seed, horizon); return err },
				func(ctx context.Context) error { _, err := suite.Fig14(ctx, seed, horizon); return err },
				func(ctx context.Context) error { _, err := suite.Fig15(ctx, seed, horizon); return err },
			)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
