# Development entry points. `make ci` is what a checkin must pass:
# vet + race-enabled tests + a one-iteration benchmark smoke so the
# benchmark code itself cannot rot.

GO ?= go

.PHONY: all build test vet fmt-check lint lint-fix-hints race race-fault bench-smoke bench-baseline bench-tick bench-tick-json bench-fleet bench-fleet-json bench-http bench-http-json benchguard repin ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate: fail listing any file gofmt would rewrite. Runs ahead
# of lint in ci so bzlint's position-based diagnostics always refer to
# canonically formatted source.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "fmt-check: FAIL — gofmt would rewrite:" >&2; \
		echo "$$unformatted" >&2; \
		echo "fmt-check: run \`gofmt -w .\`" >&2; \
		exit 1; \
	fi; \
	echo "fmt-check: OK"

race:
	$(GO) test -race ./...

# Static invariants: the seven bzlint analyzers (determinism, hotpath,
# floateq, deprecated, statecov, lockcheck, mutroute) plus the
# stale-waiver report over the whole tree (DESIGN.md §7). Exit 1 on any
# unwaived diagnostic.
lint:
	$(GO) run ./cmd/bzlint ./...

# Same suite with a suggested rewrite printed under each diagnostic.
lint-fix-hints:
	$(GO) run ./cmd/bzlint -hints ./...

# Fast race pass over the fault-injection and degradation paths: the
# fault plan/apply machinery plus core's failure and degradation tests.
# Runs in seconds (short mode) so the failure paths get race coverage
# even when the full `race` sweep is skipped locally.
race-fault:
	$(GO) test -race -short ./internal/fault
	$(GO) test -race -short -run 'Fault|Degrad|MoteOffline|Jam|Battery|Chiller|Pump|Survives|FailsSafe|Stops' ./internal/core

# Every benchmark once — correctness of the benchmark harness, not timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Record the benchmark baseline consumed by the performance trajectory.
# Full `go test -bench . -benchmem` output, converted to JSON.
bench-baseline:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./... \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_parallel_runner.json

# Tick-kernel smoke: the ticks/sec and per-kernel alloc benchmarks at a
# short fixed iteration count — keeps the kernel benchmarks compiling and
# running in CI without paying for a timed measurement.
bench-tick:
	$(GO) test -bench 'SystemTick|RoomStep|NetworkStep' -benchtime 100x -benchmem -run '^$$' .

# Record the tick-kernel numbers (plus the end-to-end ReportGenerate they
# improve) as BENCH_tick_kernel.json — the measurement quoted in the
# EXPERIMENTS.md Performance section and the baseline scripts/benchguard
# gates against. Best of -count 6 per benchmark (bench_json.sh keeps the
# fastest run), matching benchguard's own measurement procedure so the
# recorded baseline is reproducible, not a single-shot noise draw.
bench-tick-json:
	$(GO) test -bench 'SystemTick|RoomStep|NetworkStep|ReportGenerate$$' -benchmem -count 6 -run '^$$' . \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_tick_kernel.json

# Fleet-scale smoke: every BenchmarkFleetTick configuration once (100,
# 1k, and 10k buildings), exercising parallel construction, the memory
# budget gate, and sharded stepping without paying for a timed run.
bench-fleet:
	$(GO) test -bench FleetTick -benchtime 1x -benchmem -run '^$$' .

# Record the fleet scaling numbers (building-ticks/s and bytes/building
# at N ∈ {100, 1k, 10k}) as BENCH_fleet.json — the table quoted in
# EXPERIMENTS.md and the baseline scripts/benchguard gates against.
# Best of -count 6 per configuration (bench_json.sh keeps the fastest),
# matching the tick-kernel baseline's measurement procedure.
bench-fleet-json:
	$(GO) test -bench FleetTick -benchmem -benchtime 3x -count 6 -run '^$$' . \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_fleet.json

# HTTP service-layer smoke: one BenchmarkHTTPQuery iteration — keeps the
# bubblezerod handler benchmark (create/run/query through the real mux)
# compiling and running in CI without paying for a timed measurement.
# The benchmark lives in internal/twin, NOT the root bench binary: linking
# the twin server into the root test binary measurably perturbs the
# RoomStep kernel's code layout (~10% — enough to trip benchguard).
bench-http:
	$(GO) test -bench HTTPQuery -benchtime 1x -benchmem -run '^$$' ./internal/twin

# Record the HTTP query throughput (queries/s against a live 1k-building
# twin) as BENCH_http.json — the baseline scripts/benchguard gates
# against. Best of -count 6 (bench_json.sh keeps the fastest run),
# matching the other baselines' measurement procedure.
bench-http-json:
	$(GO) test -bench HTTPQuery -benchmem -benchtime 2000x -count 6 -run '^$$' ./internal/twin \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_http.json

# Regression gate: fail when a guarded rate (BenchmarkSystemTick ticks/s,
# BenchmarkFleetTick/N1000xS8 building-ticks/s) falls more than
# BENCHGUARD_PCT (default 10%) below its committed baseline. Best-of-BENCHGUARD_COUNT runs, so one noisy scheduling slice
# on a shared machine cannot fail the build. Ordered first in ci: the
# timing must be taken before the race tests saturate the machine.
benchguard:
	sh scripts/benchguard

# Re-pin the golden epoch after an intentional kernel or model change.
# Requires REASON, refuses to pin metrics outside the documented paper
# bounds, bumps the epoch version, and records the old→new delta. When
# `make ci` fails on a golden digest drift, this is the advertised fix —
# the failing tests print this exact invocation.
repin:
	@test -n "$(REASON)" || { echo 'make repin requires REASON="why the bits moved"' >&2; exit 1; }
	$(GO) run ./cmd/goldendump -repin internal/experiments/testdata/golden_epoch.json -reason "$(REASON)"

ci: benchguard fmt-check vet lint race-fault race bench-smoke bench-tick bench-fleet bench-http
	@echo ci: OK
