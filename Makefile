# Development entry points. `make ci` is what a checkin must pass:
# vet + race-enabled tests + a one-iteration benchmark smoke so the
# benchmark code itself cannot rot.

GO ?= go

.PHONY: all build test vet race bench-smoke bench-baseline bench-tick bench-tick-json ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Every benchmark once — correctness of the benchmark harness, not timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Record the benchmark baseline consumed by the performance trajectory.
# Full `go test -bench . -benchmem` output, converted to JSON.
bench-baseline:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./... \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_parallel_runner.json

# Tick-kernel smoke: the ticks/sec and per-kernel alloc benchmarks at a
# short fixed iteration count — keeps the kernel benchmarks compiling and
# running in CI without paying for a timed measurement.
bench-tick:
	$(GO) test -bench 'SystemTick|RoomStep|NetworkStep' -benchtime 100x -benchmem -run '^$$' .

# Record the tick-kernel numbers (plus the end-to-end ReportGenerate they
# improve) as BENCH_tick_kernel.json — the measurement quoted in the
# EXPERIMENTS.md Performance section.
bench-tick-json:
	$(GO) test -bench 'SystemTick|RoomStep|NetworkStep|ReportGenerate$$' -benchmem -run '^$$' . \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_tick_kernel.json

ci: vet race bench-smoke bench-tick
	@echo ci: OK
