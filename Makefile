# Development entry points. `make ci` is what a checkin must pass:
# vet + race-enabled tests + a one-iteration benchmark smoke so the
# benchmark code itself cannot rot.

GO ?= go

.PHONY: all build test vet race bench-smoke bench-baseline ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Every benchmark once — correctness of the benchmark harness, not timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Record the benchmark baseline consumed by the performance trajectory.
# Full `go test -bench . -benchmem` output, converted to JSON.
bench-baseline:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./... \
		| tee /dev/stderr | sh scripts/bench_json.sh > BENCH_parallel_runner.json

ci: vet race bench-smoke
	@echo ci: OK
