package bubblezero_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/wsn"
)

// Tick-kernel benchmarks: the per-tick hot path the zero-alloc work
// targets. BenchmarkSystemTick is the headline ticks/sec number for the
// fully assembled system; the Room.Step and Network.Step benchmarks
// isolate the two kernels whose allocation behaviour is pinned to zero by
// the package tests (internal/thermal, internal/wsn). Recorded in
// BENCH_tick_kernel.json via `make bench-tick-json`.

// benchStart matches the 13:00 trial start used across the experiments.
var benchStart = time.Date(2013, time.August, 20, 13, 0, 0, 0, time.UTC)

// BenchmarkSystemTick steps the fully assembled system — room, devices,
// network, both hydraulic loops, controllers, glue, and trace recording —
// one tick per iteration and reports the aggregate tick rate.
func BenchmarkSystemTick(b *testing.B) {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm up past the transient so iterations measure steady-state ticks
	// (buffers grown, controllers engaged), then time b.N ticks in one run.
	if err := sys.Engine().RunTicks(ctx, 600); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := sys.Engine().RunTicks(ctx, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkRoomStep isolates the thermal integration kernel: four coupled
// zones with occupancy, ventilation input, and an open door, including the
// per-tick derived-state (dew point, RH, averages) recomputation.
func BenchmarkRoomStep(b *testing.B) {
	r, err := thermal.NewRoom(thermal.DefaultConfig(),
		psychro.NewStateDewPoint(28.9, 27.4, 0), 700)
	if err != nil {
		b.Fatal(err)
	}
	r.SetOccupants(thermal.ZoneID(0), 2)
	r.SetVent(thermal.ZoneID(1), thermal.VentInput{
		VolFlow: 0.02, Supply: psychro.NewStateDewPoint(18, 9, 0), SupplyCO2PPM: 400,
	})
	r.OpenDoor(time.Duration(1<<62) - 1)
	e := sim.NewEngine(sim.MustClock(benchStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(env)
	}
}

// BenchmarkNetworkStep isolates the CSMA channel kernel under load: thirty
// senders contending per tick, with two subscribers on the delivery path.
func BenchmarkNetworkStep(b *testing.B) {
	e := sim.NewEngine(sim.MustClock(benchStart, time.Second), 11)
	net, err := wsn.NewNetwork(wsn.DefaultConfig(), e.RNG().Stream("wsn"))
	if err != nil {
		b.Fatal(err)
	}
	env := sim.NewEnv(e.Clock(), e.RNG())
	var nodes []*wsn.Node
	for i := 0; i < 20; i++ {
		n, err := net.AddNode(wsn.NodeID(fmt.Sprintf("bt-%d", i)), wsn.PowerBattery)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 10; i++ {
		n, err := net.AddNode(wsn.NodeID(fmt.Sprintf("ac-%d", i)), wsn.PowerAC)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	net.Subscribe(func(wsn.Message) {}, wsn.MsgTemperature)
	net.Subscribe(func(wsn.Message) {}, wsn.MsgHumidity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			_ = net.Broadcast(n, wsn.Message{Type: wsn.MsgTemperature})
		}
		net.Step(env)
	}
}

// TestSystemTickZeroAllocWithFaultPlan pins the steady-state tick to
// zero per-tick allocations while a fault plan is armed and one of its
// outages is live: the suspended-entry scheduling path, the watchdog the
// plan arms, and the degradation bookkeeping must not add per-tick
// garbage. Each measured call covers a 100-tick chunk; the allowance of
// 10 per chunk absorbs the per-call Env header and the rare amortized
// events profiling attributes the residue to (histogram rescale,
// due-wheel bucket growth, trace chunk linking — ~2 per chunk in
// practice), while a single new allocation on the per-tick path shows
// up as 100+ and fails hard.
func TestSystemTickZeroAllocWithFaultPlan(t *testing.T) {
	plan := fault.MustPlan(
		// Injected and cleared during warmup: exercises the suspend and
		// resume transitions before measurement starts.
		fault.Jam(2*time.Minute, time.Minute),
		// Live for the whole measured window: the mote's wheel entry stays
		// suspended and zone-2 control runs on neighbour substitution.
		fault.MoteOffline(5*time.Minute, 30*time.Minute, "bt-temp-2"),
	)
	cfg := core.DefaultConfig()
	sys, err := core.NewSystem(cfg, core.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// 12 minutes: past the thermal transient, past the jam window, and 7
	// minutes into the outage — beyond the 5-minute staleness budget, so
	// neighbour substitution is active when measurement starts.
	if err := sys.Run(ctx, 12*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !sys.Degradation().TempSubstituted[1] {
		t.Fatal("warmup did not reach the live outage window")
	}

	const chunks, ticksPer = 6, 100
	// Pre-grow every traced series past the samples the measured ticks
	// record (one per TracePeriod at the 1 s step), so amortized chunk
	// growth does not count as tick work.
	samples := (chunks+1)*ticksPer/int(cfg.TracePeriod/time.Second) + 4
	for _, name := range sys.Recorder().Names() {
		sys.Recorder().Series(name).Grow(samples)
	}
	allocs := testing.AllocsPerRun(chunks, func() {
		if err := sys.Engine().RunTicks(ctx, ticksPer); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Errorf("ticking with an armed fault plan allocates %.2f per %d-tick chunk, want <= 10 (amortized events only, nothing per tick)", allocs, ticksPer)
	}
	if !sys.Degradation().TempSubstituted[1] {
		t.Error("outage ended mid-measurement; the pin no longer covers the degraded path")
	}
}
