package bubblezero_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/wsn"
)

// Tick-kernel benchmarks: the per-tick hot path the zero-alloc work
// targets. BenchmarkSystemTick is the headline ticks/sec number for the
// fully assembled system; the Room.Step and Network.Step benchmarks
// isolate the two kernels whose allocation behaviour is pinned to zero by
// the package tests (internal/thermal, internal/wsn). Recorded in
// BENCH_tick_kernel.json via `make bench-tick-json`.

// benchStart matches the 13:00 trial start used across the experiments.
var benchStart = time.Date(2013, time.August, 20, 13, 0, 0, 0, time.UTC)

// BenchmarkSystemTick steps the fully assembled system — room, devices,
// network, both hydraulic loops, controllers, glue, and trace recording —
// one tick per iteration and reports the aggregate tick rate.
func BenchmarkSystemTick(b *testing.B) {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm up past the transient so iterations measure steady-state ticks
	// (buffers grown, controllers engaged), then time b.N ticks in one run.
	if err := sys.Engine().RunTicks(ctx, 600); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := sys.Engine().RunTicks(ctx, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkRoomStep isolates the thermal integration kernel: four coupled
// zones with occupancy, ventilation input, and an open door, including the
// per-tick derived-state (dew point, RH, averages) recomputation.
func BenchmarkRoomStep(b *testing.B) {
	r, err := thermal.NewRoom(thermal.DefaultConfig(),
		psychro.NewStateDewPoint(28.9, 27.4, 0), 700)
	if err != nil {
		b.Fatal(err)
	}
	r.SetOccupants(thermal.ZoneID(0), 2)
	r.SetVent(thermal.ZoneID(1), thermal.VentInput{
		VolFlow: 0.02, Supply: psychro.NewStateDewPoint(18, 9, 0), SupplyCO2PPM: 400,
	})
	r.OpenDoor(time.Duration(1<<62) - 1)
	e := sim.NewEngine(sim.MustClock(benchStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(env)
	}
}

// BenchmarkNetworkStep isolates the CSMA channel kernel under load: thirty
// senders contending per tick, with two subscribers on the delivery path.
func BenchmarkNetworkStep(b *testing.B) {
	e := sim.NewEngine(sim.MustClock(benchStart, time.Second), 11)
	net, err := wsn.NewNetwork(wsn.DefaultConfig(), e.RNG().Stream("wsn"))
	if err != nil {
		b.Fatal(err)
	}
	env := sim.NewEnv(e.Clock(), e.RNG())
	var nodes []*wsn.Node
	for i := 0; i < 20; i++ {
		n, err := net.AddNode(wsn.NodeID(fmt.Sprintf("bt-%d", i)), wsn.PowerBattery)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 10; i++ {
		n, err := net.AddNode(wsn.NodeID(fmt.Sprintf("ac-%d", i)), wsn.PowerAC)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	net.Subscribe(func(wsn.Message) {}, wsn.MsgTemperature)
	net.Subscribe(func(wsn.Message) {}, wsn.MsgHumidity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			_ = net.Broadcast(n, wsn.Message{Type: wsn.MsgTemperature})
		}
		net.Step(env)
	}
}
