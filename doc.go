// Package bubblezero is a full-system reproduction of "Energy Efficient
// HVAC System with Distributed Sensing and Control" (ICDCS 2014): the
// BubbleZERO low-exergy HVAC deployment — radiant cooling on 18 °C water,
// distributed dehumidification/ventilation on 8 °C coils, and a duty-cycled
// 802.15.4 sensor network with adaptive transmission scheduling — rebuilt
// as a deterministic discrete-time simulation in pure Go.
//
// The library lives under internal/: core assembles the whole system;
// radiant, vent, and adaptive implement the paper's contributions; thermal,
// hydraulic, wsn, sensor, psychro, exergy, energy, pid, sim, and trace are
// the substrates the real deployment had as hardware. The experiments
// package regenerates every figure of the paper's evaluation; the
// benchmarks in bench_test.go wrap them for `go test -bench`.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// hardware-to-simulation substitutions, and EXPERIMENTS.md for
// paper-versus-measured results.
package bubblezero
